#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "core/legal_coloring.hpp"
#include "graph/generators.hpp"

namespace dvc {
namespace {

TEST(LegalColoring, Algorithm2ProducesLegalOAColoring) {
  const int a = 16;
  Graph g = planted_arboricity(4096, a, 1);
  const LegalColoringResult res = legal_coloring(g, a, /*p=*/4);
  EXPECT_TRUE(is_legal_coloring(g, res.colors));
  EXPECT_EQ(res.distinct, static_cast<int>(palette_span(res.colors)));
  EXPECT_GE(res.iterations, 1);
}

TEST(LegalColoring, Theorem43LinearColors) {
  // O(a) colors: with mu = 2/3 the constant is (3+eps)^(4/mu')-ish; on real
  // runs the distinct count stays within a modest multiple of a.
  const int a = 16;
  Graph g = planted_arboricity(4096, a, 2);
  const LegalColoringResult res = legal_coloring_linear(g, a, /*mu=*/0.66);
  EXPECT_TRUE(is_legal_coloring(g, res.colors));
  EXPECT_LE(res.distinct, 24 * a);
}

TEST(LegalColoring, RejectsTinyP) {
  Graph g = planted_arboricity(128, 4, 3);
  EXPECT_THROW(legal_coloring(g, 4, 3), precondition_error);
}

TEST(LegalColoring, SkipsLoopWhenArboricityBelowP) {
  Graph t = random_tree(512, 4);
  const LegalColoringResult res = legal_coloring(t, 1, 8);
  EXPECT_TRUE(is_legal_coloring(t, res.colors));
  EXPECT_EQ(res.iterations, 0);
  // Lemma 2.2(1) alone: floor(2.25*1)+1 = 3 colors.
  EXPECT_LE(res.distinct, 3);
}

TEST(LegalColoring, Corollary46NearLinear) {
  const int a = 8;
  Graph g = planted_arboricity(4096, a, 5);
  const LegalColoringResult res = legal_coloring_near_linear(g, a, /*eta=*/0.5);
  EXPECT_TRUE(is_legal_coloring(g, res.colors));
  // Rounds O(log a log n): very generous envelope.
  const double logn = std::log2(4096.0);
  EXPECT_LE(res.total.rounds, 64 * std::log2(static_cast<double>(a) + 1) * logn + 512);
}

TEST(LegalColoring, Theorem45SlowFunction) {
  const int a = 32;
  Graph g = planted_arboricity(4096, a, 6);
  const LegalColoringResult res = legal_coloring_slow_fn(g, a, /*f=*/16);
  EXPECT_TRUE(is_legal_coloring(g, res.colors));
  EXPECT_GE(res.iterations, 2);  // small p => several refinement phases
}

TEST(LegalColoring, PhaseLogCoversAllStages) {
  Graph g = planted_arboricity(1024, 8, 7);
  const LegalColoringResult res = legal_coloring(g, 8, 4);
  // Expect at least: one arbdefective span (with its orientation subtree)
  // plus the final-coloring span and its four stages.
  EXPECT_GE(res.phases.size(), 5u);
  for (std::size_t i = 0; i < res.phases.size(); ++i) {
    EXPECT_FALSE(res.phases.name(i).empty());
  }
  // Top-level spans partition the run: their stats compose to the total.
  const sim::RunStats total = res.phases.total();
  EXPECT_EQ(total.rounds, res.total.rounds);
  EXPECT_EQ(total.messages, res.total.messages);
  EXPECT_EQ(total.words, res.total.words);
  // The refinement iteration appears as a named span whose subtree exposes
  // the partial-orientation pipeline.
  bool found_arbdefective = false, found_h_partition = false;
  for (std::size_t i = 0; i < res.phases.size(); ++i) {
    if (res.phases.name(i).starts_with("arbdefective(")) {
      EXPECT_TRUE(res.phases[i].span);
      EXPECT_EQ(res.phases[i].depth, 0);
      found_arbdefective = true;
    }
    if (res.phases.name(i) == "h-partition") {
      EXPECT_FALSE(res.phases[i].span);
      EXPECT_GT(res.phases[i].depth, 0);
      found_h_partition = true;
    }
  }
  EXPECT_TRUE(found_arbdefective);
  EXPECT_TRUE(found_h_partition);
}

TEST(LegalColoring, WorksOnBoundedDegreeGraphs) {
  // Arboricity <= Delta always; the algorithm must handle degree-bounded
  // inputs out of the box.
  Graph g = random_near_regular(2048, 8, 8);
  const LegalColoringResult res = legal_coloring(g, 8, 4);
  EXPECT_TRUE(is_legal_coloring(g, res.colors));
}

TEST(LegalColoring, InitialGroupsAreRespected) {
  // Two planted components with disjoint groups and per-group arboricity 4.
  const V half = 512;
  Graph a4 = planted_arboricity(half, 4, 8);
  EdgeList edges = a4.edges();
  for (const auto& [u, v] : planted_arboricity(half, 4, 9).edges()) {
    edges.emplace_back(u + half, v + half);
  }
  Graph g = Graph::from_edges(2 * half, edges);
  std::vector<std::int64_t> groups(static_cast<std::size_t>(2 * half), 0);
  for (V v = half; v < 2 * half; ++v) groups[static_cast<std::size_t>(v)] = 1;
  const LegalColoringResult res = legal_coloring(g, 4, 4, 0.25, &groups, 4);
  EXPECT_TRUE(is_legal_coloring(g, res.colors));
}

TEST(LegalColoring, Corollary47DeltaPlusOne) {
  // a = 3 but Delta ~ 192: the coloring must fit in Delta+1 colors and run
  // much faster than Delta rounds would suggest.
  Graph g = low_arboricity_high_degree(8192, 3, 192, 10);
  const LegalColoringResult res = delta_plus_one_low_arb(g, 3);
  EXPECT_TRUE(is_legal_coloring(g, res.colors));
  EXPECT_LE(res.distinct, g.max_degree() + 1);
  // o(Delta) colors in fact.
  EXPECT_LT(res.distinct, g.max_degree() / 2);
}

TEST(LegalColoring, DeterministicAcrossRuns) {
  Graph g = planted_arboricity(1024, 6, 11);
  const LegalColoringResult r1 = legal_coloring(g, 6, 4);
  const LegalColoringResult r2 = legal_coloring(g, 6, 4);
  EXPECT_EQ(r1.colors, r2.colors);
  EXPECT_EQ(r1.total.rounds, r2.total.rounds);
  EXPECT_EQ(r1.total.messages, r2.total.messages);
}

class LegalSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LegalSweep, LegalAcrossFamiliesAndP) {
  const auto [n, a, p] = GetParam();
  Graph g = planted_arboricity(n, a, static_cast<std::uint64_t>(n + a + p));
  const LegalColoringResult res = legal_coloring(g, a, p);
  EXPECT_TRUE(is_legal_coloring(g, res.colors));
  EXPECT_LE(static_cast<std::uint64_t>(res.distinct), res.palette_formula);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LegalSweep,
    ::testing::Combine(::testing::Values(256, 1024, 4096),
                       ::testing::Values(4, 8, 16),
                       ::testing::Values(4, 8)));

}  // namespace
}  // namespace dvc
