#include <gtest/gtest.h>

#include "common/check.hpp"
#include "graph/generators.hpp"
#include "graph/orientation.hpp"

namespace dvc {
namespace {

TEST(Orientation, StartsUnoriented) {
  Graph p = path_graph(3);
  Orientation o(p);
  EXPECT_EQ(o.num_oriented_edges(), 0);
  EXPECT_EQ(o.max_deficit(), 2);
  EXPECT_FALSE(o.is_complete());
  EXPECT_TRUE(o.is_acyclic());
  EXPECT_EQ(o.length(), 0);
}

TEST(Orientation, MirrorConsistency) {
  Graph p = path_graph(2);
  Orientation o(p);
  o.orient_out(0, 0);
  EXPECT_TRUE(o.is_out(0, 0));
  EXPECT_TRUE(o.is_in(1, 0));
  o.orient_in(0, 0);
  EXPECT_TRUE(o.is_in(0, 0));
  EXPECT_TRUE(o.is_out(1, 0));
  o.clear(0, 0);
  EXPECT_TRUE(o.is_unoriented(0, 0));
  EXPECT_TRUE(o.is_unoriented(1, 0));
}

TEST(Orientation, DegreesAndDeficit) {
  Graph s = star_graph(5);  // hub 0
  Orientation o(s);
  o.orient_out(0, 0);
  o.orient_out(0, 1);
  o.orient_in(0, 2);
  EXPECT_EQ(o.out_degree(0), 2);
  EXPECT_EQ(o.in_degree(0), 1);
  EXPECT_EQ(o.deficit(0), 1);
  EXPECT_EQ(o.max_out_degree(), 2);
}

TEST(Orientation, DetectsCycle) {
  Graph c = cycle_graph(3);
  Orientation o(c);
  o.orient_out(0, c.port_of(0, 1));
  o.orient_out(1, c.port_of(1, 2));
  o.orient_out(2, c.port_of(2, 0));
  EXPECT_FALSE(o.is_acyclic());
  EXPECT_THROW(o.topological_order_parents_first(), invariant_error);
  EXPECT_THROW(o.lengths(), invariant_error);
}

TEST(Orientation, LengthOfDirectedPath) {
  Graph p = path_graph(5);
  Orientation o(p);
  for (V v = 0; v + 1 < 5; ++v) o.orient_out(v, p.port_of(v, v + 1));
  EXPECT_TRUE(o.is_acyclic());
  EXPECT_EQ(o.length(), 4);
  const auto len = o.lengths();
  EXPECT_EQ(len[0], 4);
  EXPECT_EQ(len[4], 0);
}

TEST(Orientation, ParentsFirstOrderRespectsArrows) {
  Graph p = path_graph(4);
  Orientation o(p);
  for (V v = 0; v + 1 < 4; ++v) o.orient_out(v, p.port_of(v, v + 1));
  const auto order = o.topological_order_parents_first();
  std::vector<int> pos(4);
  for (int i = 0; i < 4; ++i) pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  // Edge v -> v+1 (v+1 is v's parent): parent first.
  for (V v = 0; v + 1 < 4; ++v) EXPECT_LT(pos[static_cast<std::size_t>(v + 1)], pos[static_cast<std::size_t>(v)]);
}

TEST(Orientation, CompleteAcyclicLemma31) {
  // Partial orientation of a 4-cycle plus chords; completion must stay
  // acyclic and orient everything.
  Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}});
  Orientation o(g);
  o.orient_out(0, g.port_of(0, 1));
  o.orient_out(2, g.port_of(2, 1));
  ASSERT_TRUE(o.is_acyclic());
  o.complete_acyclic();
  EXPECT_TRUE(o.is_complete());
  EXPECT_TRUE(o.is_acyclic());
  // Previously oriented edges keep their direction.
  EXPECT_TRUE(o.is_out(0, g.port_of(0, 1)));
  EXPECT_TRUE(o.is_out(2, g.port_of(2, 1)));
}

TEST(Orientation, CompleteAcyclicOnEmptyOrientation) {
  Graph k4 = complete_graph(4);
  Orientation o(k4);
  o.complete_acyclic();
  EXPECT_TRUE(o.is_complete());
  EXPECT_TRUE(o.is_acyclic());
  // A complete acyclic orientation of K4 has length exactly 3.
  EXPECT_EQ(o.length(), 3);
}

TEST(Orientation, AppendixALengthBoundsChromaticNumber) {
  // Appendix A: a complete acyclic orientation of length l yields a legal
  // (l+1)-coloring, hence l >= chi - 1. For K_n, chi = n, so any complete
  // acyclic orientation has length >= n-1.
  for (V n : {3, 5, 8}) {
    Graph k = complete_graph(n);
    Orientation o(k);
    o.complete_acyclic();
    EXPECT_GE(o.length(), n - 1);
  }
}

}  // namespace
}  // namespace dvc
